/** @file Processor-level tests: semantics, faults, timing. */

#include <gtest/gtest.h>

#include "jasm/assembler.hh"
#include "sim/logging.hh"
#include "machine/jmachine.hh"
#include "runtime/jos.hh"

namespace jmsim
{
namespace
{

/** Run a single-node program and return node 0's host output. */
std::vector<std::int32_t>
run1(const std::string &body, Cycle limit = 100000)
{
    Program prog = assemble(jos::withKernel("t.jasm", body, false));
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(1);
    JMachine m(cfg, std::move(prog));
    const RunResult r = m.run(limit);
    EXPECT_NE(r.reason, StopReason::CycleLimit);
    std::vector<std::int32_t> out;
    for (const Word &w : m.node(0).processor().hostOut())
        out.push_back(w.asInt());
    return out;
}

TEST(Processor, ArithmeticAndShifts)
{
    const auto out = run1(R"(
boot:
    MOVEI R0, 100
    MOVEI R1, 7
    SUB R2, R0, R1
    OUT R2                  ; 93
    MUL R2, R0, R1
    OUT R2                  ; 700
    ASHI R2, R1, #3
    OUT R2                  ; 56
    LDL R2, #-64
    ASHI R2, R2, #-3
    OUT R2                  ; -8 (arithmetic)
    LDL R2, #-64
    LSHI R2, R2, #-3
    OUT R2                  ; logical shift of -64
    NOT R2, R1
    OUT R2                  ; -8
    HALT
)");
    ASSERT_EQ(out.size(), 6u);
    EXPECT_EQ(out[0], 93);
    EXPECT_EQ(out[1], 700);
    EXPECT_EQ(out[2], 56);
    EXPECT_EQ(out[3], -8);
    EXPECT_EQ(out[4], static_cast<std::int32_t>(0x1ffffff8u));
    EXPECT_EQ(out[5], -8);
}

TEST(Processor, ComparisonsProduceBools)
{
    const auto out = run1(R"(
boot:
    MOVEI R0, 3
    MOVEI R1, 5
    LT R2, R0, R1
    OUT R2
    GE R2, R0, R1
    OUT R2
    EQI R2, R0, #3
    OUT R2
    HALT
)");
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[1], 0);
    EXPECT_EQ(out[2], 1);
}

TEST(Processor, CallAndReturn)
{
    const auto out = run1(R"(
boot:
    MOVEI R0, 5
    CALL A2, double
    OUT R0
    HALT
double:
    ADD R0, R0, R0
    JMP A2
)");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 10);
}

TEST(Processor, TagInstructions)
{
    const auto out = run1(R"(
boot:
    MOVEI R0, 7
    WTAG R1, R0, #cfut
    RTAG R2, R1
    OUT R2                  ; 8 = Tag::Cfut
    WTAG R1, R1, #int
    OUT R1                  ; bits preserved
    HALT
)");
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], static_cast<std::int32_t>(Tag::Cfut));
    EXPECT_EQ(out[1], 7);
}

TEST(Processor, SegmentBoundsFaultIsFatalWithoutHandler)
{
    const std::string src = R"(
boot:
    LDL A0, seg(100, 4)
    LD R0, [A0+4]
    HALT
)";
    EXPECT_THROW(run1(src), FatalError);
}

TEST(Processor, FutUseFaultsOnArithmetic)
{
    const std::string src = R"(
boot:
    MOVEI R0, 1
    WTAG R1, R0, #fut
    ADD R2, R1, R0
    HALT
)";
    EXPECT_THROW(run1(src), FatalError);
}

TEST(Processor, FutureCanBeMovedAndStored)
{
    // Futures are first-class: transport does not fault.
    const auto out = run1(R"(
boot:
    MOVEI R0, 9
    WTAG R1, R0, #fut
    MOVE R2, R1
    LDL A0, seg(200, 16)
    ST [A0+0], R2
    LDRAW R3, [A0+0]
    RTAG R3, R3
    OUT R3
    HALT
)");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], static_cast<std::int32_t>(Tag::Fut));
}

TEST(Processor, ExternalMemoryCostsMoreThanInternal)
{
    const char *body = R"(
.equ LOC, %s
boot:
    LDL A0, seg(LOC, 64)
    MOVEI R0, 0
    ST [A0+0], R0
    GETSP R1, CYCLELO
    LD R0, [A0+0]
    LD R0, [A0+0]
    LD R0, [A0+0]
    LD R0, [A0+0]
    GETSP R2, CYCLELO
    SUB R2, R2, R1
    OUT R2
    HALT
)";
    char internal[512], external[512];
    std::snprintf(internal, sizeof(internal), body, "256");
    std::snprintf(external, sizeof(external), body, "73728");
    const auto in_cost = run1(internal)[0];
    const auto ex_cost = run1(external)[0];
    EXPECT_EQ(in_cost, 4 * 2 + 1);   // 2-cycle loads + closing GETSP
    EXPECT_EQ(ex_cost, 4 * 6 + 1);   // 6-cycle DRAM accesses
}

TEST(Processor, MkhdrBuildsDispatchableHeaders)
{
    const auto out = run1(R"(
boot:
    CALL A2, jos_init
    LDL R0, ip(handler)
    MOVEI R1, 2
    MKHDR R2, R0, R1
    GETSP R3, NNR
    SEND0 R3
    LDL R1, #321
    SEND20E R2, R1
    CALL A2, jos_park
handler:
    LD R0, [A3+1]
    OUT R0
    SUSPEND
)");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 321);
}

TEST(Processor, CheckPassesAndFails)
{
    const auto out = run1(R"(
boot:
    MOVEI R0, 1
    CHECK R0, #int
    OUT R0
    HALT
)");
    EXPECT_EQ(out.size(), 1u);
    EXPECT_THROW(run1("boot:\n MOVEI R0, 1\n CHECK R0, #nil\n HALT\n"),
                 FatalError);
}

TEST(Processor, ProbeReturnsNilOnMiss)
{
    const auto out = run1(R"(
boot:
    LDL R0, ptr(5)
    MOVEI R1, 77
    ENTER R0, R1
    PROBE R2, R0
    OUT R2
    LDL R0, ptr(6)
    PROBE R2, R0
    RTAG R2, R2
    OUT R2
    HALT
)");
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 77);
    EXPECT_EQ(out[1], static_cast<std::int32_t>(Tag::Nil));
}

TEST(Processor, DispatchCostsFourCycles)
{
    // Compare the arrival-to-first-instruction time against config.
    Program prog = assemble(jos::withKernel("t.jasm", R"(
boot:
    CALL A2, jos_init
    GETSP R0, NNR
    SEND0 R0
    LDL R1, hdr(h, 1)
    SEND0E R1
    CALL A2, jos_park
h:
    SUSPEND
)",
                                            false));
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(1);
    JMachine m(cfg, std::move(prog));
    m.run(10000);
    const auto &st = m.node(0).processor().stats();
    EXPECT_EQ(st.dispatches, 1u);
    EXPECT_GE(st.cyclesByClass[static_cast<std::size_t>(StatClass::Comm)],
              cfg.proc.dispatchCycles);
}

} // namespace
} // namespace jmsim
