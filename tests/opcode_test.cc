/** @file Unit tests for the opcode metadata table. */

#include <gtest/gtest.h>

#include "isa/opcode.hh"

namespace jmsim
{
namespace
{

TEST(Opcode, MnemonicRoundTrip)
{
    for (unsigned i = 0; i < static_cast<unsigned>(Opcode::NumOpcodes);
         ++i) {
        const auto op = static_cast<Opcode>(i);
        const auto back = opcodeFromMnemonic(opcodeInfo(op).mnemonic);
        ASSERT_TRUE(back.has_value()) << opcodeInfo(op).mnemonic;
        EXPECT_EQ(*back, op);
    }
}

TEST(Opcode, MnemonicLookupIsCaseInsensitive)
{
    EXPECT_EQ(opcodeFromMnemonic("add"), Opcode::Add);
    EXPECT_EQ(opcodeFromMnemonic("Send20e"), Opcode::Send20e);
    EXPECT_FALSE(opcodeFromMnemonic("FROB").has_value());
}

TEST(Opcode, SendFamilyClassification)
{
    unsigned sends = 0, ends = 0, p1 = 0, doubles = 0;
    for (unsigned i = 0; i < static_cast<unsigned>(Opcode::NumOpcodes);
         ++i) {
        const auto op = static_cast<Opcode>(i);
        if (!isSend(op))
            continue;
        ++sends;
        if (isSendEnd(op))
            ++ends;
        if (sendPriority(op) == 1)
            ++p1;
        if (sendWords(op) == 2)
            ++doubles;
    }
    EXPECT_EQ(sends, 8u);
    EXPECT_EQ(ends, 4u);
    EXPECT_EQ(p1, 4u);
    EXPECT_EQ(doubles, 4u);
    EXPECT_FALSE(isSend(Opcode::Move));
}

TEST(Opcode, CommunicationDefaultsToCommClass)
{
    EXPECT_EQ(opcodeInfo(Opcode::Send0).defaultClass, StatClass::Comm);
    EXPECT_EQ(opcodeInfo(Opcode::Xlate).defaultClass, StatClass::Xlate);
    EXPECT_EQ(opcodeInfo(Opcode::Add).defaultClass, StatClass::Compute);
    EXPECT_EQ(opcodeInfo(Opcode::Suspend).defaultClass, StatClass::Sync);
}

TEST(Opcode, XlateCostsThreeCycles)
{
    // The paper: "A successful xlate takes three cycles."
    EXPECT_EQ(opcodeInfo(Opcode::Xlate).baseCycles, 3u);
    EXPECT_EQ(opcodeInfo(Opcode::Enter).baseCycles, 3u);
}

TEST(Opcode, StatClassNamesDistinct)
{
    for (unsigned i = 0; i < static_cast<unsigned>(StatClass::NumClasses);
         ++i) {
        for (unsigned j = i + 1;
             j < static_cast<unsigned>(StatClass::NumClasses); ++j) {
            EXPECT_STRNE(statClassName(static_cast<StatClass>(i)),
                         statClassName(static_cast<StatClass>(j)));
        }
    }
}

} // namespace
} // namespace jmsim
