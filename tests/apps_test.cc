/** @file End-to-end tests of the four macro-benchmark applications.
 *
 * Each run*() driver validates its answer against the C++ reference
 * internally (wrong results throw), so these tests double as
 * correctness checks of the assembly implementations across machine
 * shapes, plus assertions about the statistics the paper tabulates.
 */

#include <gtest/gtest.h>

#include "workloads/apps.hh"

namespace jmsim
{
namespace workloads
{
namespace
{

TEST(Lcs, SmallInstanceAcrossShapes)
{
    for (unsigned nodes : {1u, 2u, 8u}) {
        LcsConfig c;
        c.nodes = nodes;
        c.lenA = 64;
        c.lenB = 128;
        const AppResult r = runLcs(c);
        EXPECT_GT(r.answer, 0);
        EXPECT_GT(r.runCycles, 0u);
    }
}

TEST(Lcs, OneHandlerInvocationPerCharacterPerNode)
{
    LcsConfig c;
    c.nodes = 4;
    c.lenA = 64;
    c.lenB = 128;
    const AppResult r = runLcs(c);
    for (const auto &t : r.threadClasses) {
        if (t.name == "nxtchar") {
            EXPECT_EQ(t.threads, 4u * 128u);
            EXPECT_NEAR(t.avgMessageLength(), 3.0, 0.01);
        }
    }
}

TEST(Radix, SortsAcrossShapes)
{
    for (unsigned nodes : {1u, 4u, 16u}) {
        RadixConfig c;
        c.nodes = nodes;
        c.keys = 1024;
        const AppResult r = runRadixSort(c);
        EXPECT_EQ(r.answer, 1024);
    }
}

TEST(Radix, ThousandNodeMeshWithRelocatedRouterTable)
{
    // Past 544 nodes the node->router table no longer fits the on-chip
    // layout and routerTablePrologue relocates it to external memory.
    // runRadixSort validates every key against the reference sort, and
    // the pinned cycle/instruction counts keep the large-segment
    // variant deterministic.
    RadixConfig c;
    c.nodes = 1024;
    c.keys = 4096;
    c.keyBits = 8;
    const AppResult r = runRadixSort(c);
    EXPECT_EQ(r.answer, 4096);
    EXPECT_EQ(r.runCycles, 60924u);
    EXPECT_EQ(r.instructions, 38139074u);
    EXPECT_EQ(r.dispatches, 12284u);
}

TEST(Radix, OneWriteDataPerKeyPerPass)
{
    RadixConfig c;
    c.nodes = 8;
    c.keys = 2048;
    const AppResult r = runRadixSort(c);
    std::uint64_t writes = 0;
    for (const auto &t : r.threadClasses) {
        if (t.name.rfind("writedata", 0) == 0) {
            writes += t.threads;
            EXPECT_NEAR(t.avgMessageLength(), 3.0, 0.01);
        }
    }
    EXPECT_EQ(writes, 7ull * 2048u);  // 7 passes of 4-bit digits
}

TEST(NQueens, CountsMatchReferenceAcrossShapes)
{
    for (unsigned nodes : {1u, 4u, 16u}) {
        NQueensConfig c;
        c.nodes = nodes;
        c.queens = 8;
        const AppResult r = runNQueens(c);
        EXPECT_EQ(r.answer, 92);
    }
}

TEST(NQueens, BoardsTravelAsEightWordMessages)
{
    NQueensConfig c;
    c.nodes = 8;
    c.queens = 9;
    const AppResult r = runNQueens(c);
    for (const auto &t : r.threadClasses) {
        if (t.name == "nqueens")
            EXPECT_NEAR(t.avgMessageLength(), 8.0, 0.01);
        if (t.name == "nqdone")
            EXPECT_NEAR(t.avgMessageLength(), 3.0, 0.01);
    }
}

TEST(Tsp, OptimalAcrossShapes)
{
    for (unsigned nodes : {1u, 4u, 8u}) {
        TspConfig c;
        c.nodes = nodes;
        c.cities = 8;
        const AppResult r = runTsp(c);
        EXPECT_GT(r.answer, 0);
    }
}

TEST(Tsp, UsesTheNamingMechanisms)
{
    TspConfig c;
    c.nodes = 8;
    c.cities = 9;
    const AppResult r = runTsp(c);
    // Every distance-matrix access translates a name (Table 5).
    EXPECT_GT(r.xlates, r.dispatches);
    EXPECT_GT(r.xlateFaults, 0u);   // lazy cold misses
    EXPECT_LT(r.xlateFaults, r.xlates / 10);
    // Null-call suspensions create many small continuation threads.
    std::uint64_t conts = 0, tasksn = 0;
    for (const auto &t : r.threadClasses) {
        if (t.name == "tsp_cont")
            conts = t.threads;
        if (t.name == "tsp_task")
            tasksn = t.threads;
    }
    EXPECT_GT(conts, tasksn);
}

TEST(Tsp, DeterministicAcrossRuns)
{
    TspConfig c;
    c.nodes = 4;
    c.cities = 7;
    const AppResult a = runTsp(c);
    const AppResult b = runTsp(c);
    EXPECT_EQ(a.runCycles, b.runCycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.answer, b.answer);
}

} // namespace
} // namespace workloads
} // namespace jmsim
