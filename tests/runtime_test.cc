/** @file Tests of the JOS runtime and micro-benchmark workloads. */

#include <gtest/gtest.h>

#include "workloads/micro.hh"

namespace jmsim
{
namespace workloads
{
namespace
{

TEST(Micro, SelfPingHasBaseLatency)
{
    const PingResult r = measurePing(8, 0, PingKind::Ping, false);
    EXPECT_EQ(r.hops, 0u);
    // The paper's base round trip is 43 cycles; ours should be the
    // same order of magnitude.
    EXPECT_GT(r.roundTripCycles, 20);
    EXPECT_LT(r.roundTripCycles, 120);
}

TEST(Micro, PingLatencySlopeIsTwo)
{
    // One extra hop each way adds ~2 cycles to the round trip.
    const PingResult near = measurePing(8, 1, PingKind::Ping, false);
    const PingResult far = measurePing(8, 1 + 2 + 4, PingKind::Ping, false);
    ASSERT_EQ(near.hops, 1u);
    ASSERT_EQ(far.hops, 3u);
    const double slope =
        (far.roundTripCycles - near.roundTripCycles) / (far.hops - near.hops);
    EXPECT_NEAR(slope, 2.0, 0.8);
}

TEST(Micro, RemoteReadCostsOrdering)
{
    const double ping =
        measurePing(8, 1, PingKind::Ping, false).roundTripCycles;
    const double r1i =
        measurePing(8, 1, PingKind::Read1, false).roundTripCycles;
    const double r6i =
        measurePing(8, 1, PingKind::Read6, false).roundTripCycles;
    const double r6e =
        measurePing(8, 1, PingKind::Read6, true).roundTripCycles;
    EXPECT_LT(ping, r1i);
    EXPECT_LT(r1i, r6i);
    EXPECT_LT(r6i, r6e);  // external memory is slower
}

TEST(Micro, BlastOrderingAndPeak)
{
    const double discard = measureBlast(16, BlastMode::Discard, 32);
    const double imem = measureBlast(16, BlastMode::CopyToImem, 32);
    const double emem = measureBlast(16, BlastMode::CopyToEmem, 32);
    EXPECT_GT(discard, imem);
    EXPECT_GT(imem, emem);
    // Peak channel rate is 200 Mbits/s (0.5 words/cycle at 12.5 MHz).
    EXPECT_LT(discard, 205.0);
    EXPECT_GT(discard, 120.0);
}

TEST(Micro, SyncCostsMatchPaperShape)
{
    const SyncCosts c = measureSyncCosts();
    // Paper Table 2: success 2 vs 5, failure 6 vs 7, write 4 vs 6,
    // save 30-50, restore 20-50.
    EXPECT_EQ(c.tagSuccess, 2);
    EXPECT_GT(c.noTagSuccess, c.tagSuccess);
    EXPECT_EQ(c.tagFailure, 6);
    EXPECT_LT(c.tagWrite, c.noTagWrite + 6);  // same order
    EXPECT_GE(c.tagSave, 25);
    EXPECT_LE(c.tagSave, 70);
    EXPECT_GE(c.tagRestore, 15);
    EXPECT_LE(c.tagRestore, 70);
}

TEST(Micro, BarrierScalesLogarithmically)
{
    const double us2 = measureBarrierUs(2, 4);
    const double us8 = measureBarrierUs(8, 4);
    const double us64 = measureBarrierUs(64, 4);
    EXPECT_GT(us2, 1.0);
    EXPECT_LT(us2, 20.0);
    EXPECT_GT(us8, us2);
    EXPECT_GT(us64, us8);
    // Tripling the wave count should not triple the cost by much more.
    EXPECT_LT(us64, 6.0 * us2);
}

TEST(Micro, LoadPointLatencyGrowsWithLoad)
{
    // 16-word messages at zero idle congest a 64-node mesh enough for
    // the contention component of latency to show.
    const LoadPoint light = measureLoadPoint(64, 16, 600, 30000);
    const LoadPoint heavy = measureLoadPoint(64, 16, 0, 30000);
    EXPECT_GT(light.oneWayLatency, 5);
    EXPECT_GT(heavy.bisectionMbits, light.bisectionMbits);
    EXPECT_GT(heavy.oneWayLatency, light.oneWayLatency);
}

} // namespace
} // namespace workloads
} // namespace jmsim
