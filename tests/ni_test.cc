/** @file Tests of the network interface: send channels, atomicity,
 * message format checking, and delivery back-pressure. */

#include <gtest/gtest.h>

#include "jasm/assembler.hh"
#include "sim/logging.hh"
#include "machine/jmachine.hh"
#include "runtime/jos.hh"

namespace jmsim
{
namespace
{

std::unique_ptr<JMachine>
makeMachine(unsigned nodes, const std::string &app)
{
    Program prog = assemble(jos::withKernel("app.jasm", app, false));
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(nodes);
    return std::make_unique<JMachine>(cfg, std::move(prog));
}

TEST(Ni, HeaderLengthMismatchFaults)
{
    // Declared length 3, actual 2: SEND0E must raise send-format.
    auto m = makeMachine(1, R"(
boot:
    CALL A2, jos_init
    GETSP R0, NNR
    SEND0 R0
    LDL R1, hdr(h, 3)
    MOVEI R2, 0
    SEND20E R1, R2
    HALT
h:
    SUSPEND
)");
    EXPECT_THROW(m->run(10000), FatalError);
}

TEST(Ni, NonMsgHeaderFaults)
{
    auto m = makeMachine(1, R"(
boot:
    CALL A2, jos_init
    GETSP R0, NNR
    SEND0 R0
    MOVEI R1, 5
    SEND0E R1
    HALT
)");
    EXPECT_THROW(m->run(10000), FatalError);
}

TEST(Ni, BadDestinationFaults)
{
    auto m = makeMachine(2, R"(
boot:
    CALL A2, jos_init
    LDL R0, #0x7fff
    SEND0 R0
    HALT
)");
    EXPECT_THROW(m->run(10000), FatalError);
}

TEST(Ni, SendSequenceIsAtomicAgainstDispatch)
{
    // A handler must never interleave its words into the background
    // thread's open message: the BG thread sends 6-word messages to a
    // sink on node 1 while node 1 floods node 0 with handler-triggering
    // messages whose handler also sends. If atomicity failed, some
    // message's declared length would not match and the NI would raise
    // send-format; completion with all sinks dispatched proves it held.
    auto m = makeMachine(2, R"(
boot:
    CALL A2, jos_init
    LDL A1, seg(APP_SCRATCH, 64)
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, node1
    ; node 0 background: 40 six-word messages, word by word
    MOVEI R3, 0
lp0:
    MOVEI R0, 1
    CALL A2, jos_nnr
    SEND0 R0
    LDL R1, hdr(sink, 6)
    SEND0 R1
    SEND0 R2
    SEND0 R2
    SEND0 R2
    SEND0 R2
    SEND0E R2
    ADDI R3, R3, #1
    LDL R1, #40
    LT R1, R3, R1
    BT R1, lp0
    HALT
node1:
    ; node 1 floods node 0 with poke messages
    MOVEI R3, 0
lp1:
    MOVEI R0, 0
    CALL A2, jos_nnr
    SEND0 R0
    LDL R1, hdr(poke, 1)
    SEND0E R1
    ADDI R3, R3, #1
    LDL R1, #60
    LT R1, R3, R1
    BT R1, lp1
    CALL A2, jos_park
poke:
    ; handler on node 0 that itself sends (to node 1's sink2)
    MOVEI R0, 1
    CALL A2, jos_nnr
    SEND0 R0
    LDL R1, hdr(sink2, 2)
    MOVEI R2, 7
    SEND20E R1, R2
    SUSPEND
sink:
    SUSPEND
sink2:
    SUSPEND
)");
    const RunResult r = m->run(2'000'000);
    EXPECT_EQ(r.reason, StopReason::Quiescent);
    const Program &prog = m->program();
    const auto &hs1 = m->node(1).processor().handlerStats();
    auto sink = hs1.find(prog.entry("sink"));
    ASSERT_NE(sink, hs1.end());
    EXPECT_EQ(sink->second.dispatches, 40u);
    auto sink2 = hs1.find(prog.entry("sink2"));
    ASSERT_NE(sink2, hs1.end());
    EXPECT_EQ(sink2->second.dispatches, 60u);
}

TEST(Ni, PriorityOneMessagesPreemptPriorityZero)
{
    // A long-running P0 handler is interrupted by a P1 message; the
    // P1 handler's stamp must land before the P0 handler finishes.
    auto m = makeMachine(1, R"(
boot:
    CALL A2, jos_init
    GETSP R0, NNR
    SEND0 R0
    LDL R1, hdr(slow, 1)
    SEND0E R1
    CALL A2, jos_park
slow:
    ; trigger the priority-1 interrupt, then grind
    GETSP R0, NNR
    SEND1 R0
    LDL R1, hdr(fast, 1)
    SEND1E R1
    LDL R3, #200
w:
    ADDI R3, R3, #-1
    GTI R1, R3, #0
    BT R1, w
    GETSP R0, CYCLELO
    OUT R0                  ; [0 or 1] slow finish stamp
    SUSPEND
fast:
    GETSP R0, CYCLELO
    OUT R0                  ; stamp at P1 dispatch
    SUSPEND
)");
    const RunResult r = m->run(100000);
    EXPECT_EQ(r.reason, StopReason::Quiescent);
    const auto &out = m->node(0).processor().hostOut();
    ASSERT_EQ(out.size(), 2u);
    // The first stamp emitted must be the P1 handler's.
    EXPECT_LT(out[0].asInt(), out[1].asInt());
    // And it preempted, i.e. P0's long loop finished after P1 ran.
    EXPECT_GT(out[1].asInt() - out[0].asInt(), 300);
}

TEST(Ni, QueueBackPressureStallsDeliveryWithoutLoss)
{
    // Node 0 fires 300 three-word messages at node 1 whose handler is
    // slow; the 512-word queue cannot hold them all, so the network
    // stalls deliveries, but every message is eventually handled.
    auto m = makeMachine(2, R"(
boot:
    CALL A2, jos_init
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, park
    MOVEI R3, 0
lp:
    MOVEI R0, 1
    CALL A2, jos_nnr
    SEND0 R0
    LDL R1, hdr(slow, 3)
    SEND20 R1, R3
    SEND0E R2
    ADDI R3, R3, #1
    LDL R1, #300
    LT R1, R3, R1
    BT R1, lp
    HALT
park:
    CALL A2, jos_park
slow:
    LDL R3, #40
w:
    ADDI R3, R3, #-1
    GTI R1, R3, #0
    BT R1, w
    SUSPEND
)");
    const RunResult r = m->run(5'000'000);
    EXPECT_NE(r.reason, StopReason::CycleLimit);
    const auto &hs = m->node(1).processor().handlerStats();
    auto it = hs.find(m->program().entry("slow"));
    ASSERT_NE(it, hs.end());
    EXPECT_EQ(it->second.dispatches, 300u);
    EXPECT_GT(m->node(1).ni().stats().deliveryStallCycles, 0u);
}

TEST(Ni, ReturnToSenderBouncesAndRetransmits)
{
    // Same overload scenario as the back-pressure test, but with the
    // paper's return-to-sender flow control: refused messages bounce
    // back, jos_bounce retransmits them, and all 120 still arrive.
    Program prog = assemble(jos::withKernel("app.jasm", R"(
boot:
    CALL A2, jos_init
    GETSP R0, NODEID
    NEI R1, R0, #0
    BT R1, park
    MOVEI R3, 0
lp:
    MOVEI R0, 1
    CALL A2, jos_nnr
    SEND0 R0
    LDL R1, hdr(slow, 3)
    SEND20 R1, R3
    SEND0E R2
    ADDI R3, R3, #1
    LDL R1, #120
    LT R1, R3, R1
    BT R1, lp
    ; the sender must stay live to retransmit bounced messages
    CALL A2, jos_park
park:
    CALL A2, jos_park
slow:
    LDL R3, #60
w:
    ADDI R3, R3, #-1
    GTI R1, R3, #0
    BT R1, w
    SUSPEND
)",
                                            false));
    MachineConfig cfg;
    cfg.dims = MeshDims::forNodeCount(2);
    cfg.ni.returnToSender = true;
    cfg.ni.queueWords0 = 64;  // tiny queue to force refusals
    JMachine m(cfg, std::move(prog));
    const RunResult r = m.run(10'000'000);
    EXPECT_NE(r.reason, StopReason::CycleLimit);
    const auto &hs = m.node(1).processor().handlerStats();
    auto it = hs.find(m.program().entry("slow"));
    ASSERT_NE(it, hs.end());
    EXPECT_EQ(it->second.dispatches, 120u);
    EXPECT_GT(m.node(1).ni().stats().messagesBounced, 0u);
    // The sender's bounce handler ran.
    const auto &hs0 = m.node(0).processor().handlerStats();
    auto bounce = hs0.find(m.program().entry("jos_bounce"));
    ASSERT_NE(bounce, hs0.end());
    EXPECT_GT(bounce->second.dispatches, 0u);
}

} // namespace
} // namespace jmsim
