/** @file Unit tests for the jasm assembler. */

#include <gtest/gtest.h>

#include "jasm/assembler.hh"
#include "sim/logging.hh"

namespace jmsim
{
namespace
{

TEST(Assembler, LabelsAndSymbols)
{
    const Program p = assembleString(R"(
.equ BASE, 100
start:
    NOP
    NOP
    NOP
after:
    HALT
)");
    EXPECT_EQ(p.symbol("BASE"), 100);
    EXPECT_EQ(p.symbol("start"), 0);
    // Three NOPs fill one and a half words; 'after' aligns to word 2.
    EXPECT_EQ(p.symbol("after"), 2);
    EXPECT_TRUE(p.validIaddr(p.entry("after")));
    EXPECT_EQ(p.fetch(p.entry("after")).op, Opcode::Halt);
}

TEST(Assembler, ForwardReferencesResolve)
{
    const Program p = assembleString(R"(
boot:
    BR later
    NOP
later:
    HALT
)");
    const Instruction &br = p.fetch(p.entry("boot"));
    EXPECT_EQ(br.op, Opcode::Br);
    EXPECT_EQ(br.imm, static_cast<std::int32_t>(p.symbol("later")));
}

TEST(Assembler, WideLiteralsCarryTags)
{
    const Program p = assembleString(R"(
.equ T, 200
boot:
    LDL R0, #42
    LDL R1, seg(T, 16)
    LDL R2, hdr(boot, 3)
    LDL R3, ip(boot)
    LDL A0, ptr(7)
    HALT
)");
    EXPECT_EQ(p.fetch(p.entry("boot")).literal, Word::makeInt(42));
    const Word seg = p.fetch(p.entry("boot") + 4).literal;
    EXPECT_EQ(seg.tag, Tag::Addr);
    EXPECT_EQ(SegDesc::decode(seg).base, 200u);
    const Word hdr = p.fetch(p.entry("boot") + 8).literal;
    EXPECT_EQ(hdr.tag, Tag::Msg);
    EXPECT_EQ(MsgHeader::decode(hdr).length, 3u);
    EXPECT_EQ(p.fetch(p.entry("boot") + 12).literal.tag, Tag::Ip);
    EXPECT_EQ(p.fetch(p.entry("boot") + 16).literal.tag, Tag::Ptr);
}

TEST(Assembler, DataWordsAndExpressions)
{
    const Program p = assembleString(R"(
.equ N, 6
.org 64
table:
.word 1, 2+3, N*N, nil, cfut, ip(table)
)");
    const auto &data = p.data();
    ASSERT_EQ(data.size(), 6u);
    EXPECT_EQ(data[0].first, 64u);
    EXPECT_EQ(data[0].second.asInt(), 1);
    EXPECT_EQ(data[1].second.asInt(), 5);
    EXPECT_EQ(data[2].second.asInt(), 36);
    EXPECT_EQ(data[3].second.tag, Tag::Nil);
    EXPECT_EQ(data[4].second.tag, Tag::Cfut);
    EXPECT_EQ(data[5].second.tag, Tag::Ip);
}

TEST(Assembler, MemoryOperandShapeSelectsOpcode)
{
    const Program p = assembleString(R"(
boot:
    LD R0, [A1+5]
    LD R1, [A2+R3]
    ST [A0+2], R2
    ST [A0+R1], R2
    HALT
)");
    EXPECT_EQ(p.fetch(0).op, Opcode::Ld);
    EXPECT_EQ(p.fetch(1).op, Opcode::Ldx);
    EXPECT_EQ(p.fetch(2).op, Opcode::St);
    EXPECT_EQ(p.fetch(3).op, Opcode::Stx);
}

TEST(Assembler, RegionsSetAccountingClass)
{
    const Program p = assembleString(R"(
boot:
    NOP
.region nnr
    NOP
    NOP
.region comp
    HALT
)");
    EXPECT_EQ(p.klassAt(0), StatClass::Compute);
    EXPECT_EQ(p.klassAt(1), StatClass::Nnr);
    EXPECT_EQ(p.klassAt(2), StatClass::Nnr);
    EXPECT_EQ(p.klassAt(3), StatClass::Compute);
}

TEST(Assembler, ErrorsCarryFileAndLine)
{
    try {
        assemble({SourceFile{"prog.jasm", "boot:\n    FROBNICATE R0\n"}});
        FAIL() << "expected a fatal error";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("prog.jasm:2"),
                  std::string::npos);
    }
}

TEST(Assembler, RejectsDuplicateLabels)
{
    EXPECT_THROW(assembleString("a:\n NOP\na:\n NOP\n"), FatalError);
}

TEST(Assembler, RejectsOverlappingCode)
{
    EXPECT_THROW(assembleString(".org 10\n NOP\n NOP\n.org 10\n NOP\n"),
                 FatalError);
}

TEST(Assembler, RejectsOutOfRangeImmediates)
{
    EXPECT_THROW(assembleString("boot:\n ADDI R0, R0, #99\n"), FatalError);
    EXPECT_THROW(assembleString("boot:\n LD R0, [A0+200]\n"), FatalError);
}

TEST(Assembler, NearestLabelForDiagnostics)
{
    const Program p = assembleString(R"(
first:
    NOP
    NOP
    NOP
second:
    NOP
)");
    EXPECT_EQ(p.nearestLabel(p.entry("first")), "first");
    EXPECT_EQ(p.nearestLabel(p.entry("second") + 1), "second");
}

TEST(Assembler, EmemSectionPlacesDataHigh)
{
    const Program p = assembleString(R"(
.emem
big:
.word 9
.imem
boot:
    HALT
)");
    ASSERT_EQ(p.data().size(), 1u);
    EXPECT_GE(p.data()[0].first, 0x10000u);
    EXPECT_EQ(p.symbol("boot"), 0);
}

/** Property: instruction count matches the source across sweeps. */
class NopSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(NopSweep, CountAndPacking)
{
    std::string src = "boot:\n";
    for (int i = 0; i < GetParam(); ++i)
        src += "    NOP\n";
    src += "    HALT\n";
    const Program p = assembleString(src);
    // NOPs + HALT, plus a possible alignment filler never executed.
    EXPECT_GE(p.instructionCount(),
              static_cast<std::uint64_t>(GetParam()) + 1);
    EXPECT_LE(p.instructionCount(),
              static_cast<std::uint64_t>(GetParam()) + 2);
    EXPECT_EQ(p.codeEndWord(),
              static_cast<Addr>((GetParam() + 1 + 1) / 2));
}

INSTANTIATE_TEST_SUITE_P(Sizes, NopSweep, ::testing::Values(0, 1, 2, 3, 7,
                                                            8, 63, 64));

} // namespace
} // namespace jmsim
