# Script mode (cmake -P): configure, build, and run the fabric tests
# under UndefinedBehaviorSanitizer in a dedicated build tree (the same
# tree the `ubsan` preset uses). The event-driven mesh stepping leans
# on tight integer/bit manipulation (route-byte arithmetic, bitmap
# word walks, ring-buffer indices); this job fails the normal test run
# on any UB those paths hit, not just when someone runs the preset.
#
# Expects -DSOURCE_DIR=... and -DBINARY_DIR=... on the command line.

if(NOT SOURCE_DIR OR NOT BINARY_DIR)
    message(FATAL_ERROR "ubsan_fabric.cmake needs -DSOURCE_DIR and -DBINARY_DIR")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BINARY_DIR}
            -DJMSIM_UBSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
    RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "ubsan configure failed")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} --build ${BINARY_DIR} --parallel
            --target fabric_sched_test network_test ckpt_test netops_test
    RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "ubsan build failed")
endif()

# The full fabric-scheduler suite (crafted meshes + serial/threaded
# A/B) and the raw mesh unit tests cover injection, routing, fused
# commit, back-pressure retry, and delivery under the sanitizer.
execute_process(
    COMMAND ${BINARY_DIR}/tests/fabric_sched_test
    RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "ubsan fabric_sched run failed")
endif()

execute_process(
    COMMAND ${BINARY_DIR}/tests/network_test
    RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "ubsan network run failed")
endif()

# Checkpoint round-trips push raw bytes through the snapshot
# reader/writer (unaligned loads, varint-free fixed-width packing,
# bounds-checked cursors); run the full ckpt suite under the
# sanitizer too.
execute_process(
    COMMAND ${BINARY_DIR}/tests/ckpt_test
    RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "ubsan ckpt run failed")
endif()

# The netops engine adds wraparound fetch-and-add arithmetic, e-cube
# hop math on packed router bytes, and its own snapshot section; the
# full suite (including the mid-flight checkpoint round-trips) runs
# under the sanitizer.
execute_process(
    COMMAND ${BINARY_DIR}/tests/netops_test
    RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "ubsan netops run failed")
endif()
