# Script mode (cmake -P): configure, build, and run the threaded-fabric
# tests under ThreadSanitizer in a dedicated build tree (the same tree
# the `tsan` preset uses). Registered as a ctest from the normal build
# so the race-freedom argument of the sharded network stepping is
# exercised on every full test run, not just when someone remembers the
# preset.
#
# Expects -DSOURCE_DIR=... and -DBINARY_DIR=... on the command line.

if(NOT SOURCE_DIR OR NOT BINARY_DIR)
    message(FATAL_ERROR "tsan_fabric.cmake needs -DSOURCE_DIR and -DBINARY_DIR")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BINARY_DIR}
            -DJMSIM_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
    RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "tsan configure failed")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} --build ${BINARY_DIR} --parallel
            --target determinism_test message_pool_test fabric_sched_test
                     netops_test
    RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "tsan build failed")
endif()

# The threaded fig4 saturation point and the shard-count sweep give the
# widest phase coverage per second: staged injection, sharded pull/move,
# channel commit, and pool alloc/release from worker shards. The
# 256-node golden is left to the plain build — under TSAN it costs
# minutes without adding a new code path.
execute_process(
    COMMAND ${BINARY_DIR}/tests/determinism_test
            --gtest_filter=DeterminismThreaded.Fig4LoadMatchesSerialAcrossThreadCounts:DeterminismThreaded.ShardCountDoesNotMatter
    RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "tsan determinism run failed")
endif()

execute_process(
    COMMAND ${BINARY_DIR}/tests/message_pool_test
    RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "tsan message_pool run failed")
endif()

# The net-scheduler A/B under the sharded kernel: the event-driven
# commit (fused pushInput, retry parking) racing worker shards is the
# newest concurrent surface.
execute_process(
    COMMAND ${BINARY_DIR}/tests/fabric_sched_test
            --gtest_filter=NetScheduler.Fig3OffMatchesOnThreaded:NetScheduler.Fig4SaturationOffMatchesOnBothKernels:NetScheduler.RouterStepInvariantExactThreaded
    RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "tsan fabric_sched run failed")
endif()

# The netops engine's staged-issue commit (worker shards filling
# per-shard buffers, main thread sorting and draining them) is the same
# pattern TSAN watches in the pool; run the sharded barrier and hotspot
# determinism checks against it.
execute_process(
    COMMAND ${BINARY_DIR}/tests/netops_test
            --gtest_filter=NetOpsBarrier.DeterministicAcrossKernels:NetOpsCombine.HotspotHitsAndCorrectTotal
    RESULT_VARIABLE rv)
if(NOT rv EQUAL 0)
    message(FATAL_ERROR "tsan netops run failed")
endif()
